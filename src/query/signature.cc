#include "query/signature.h"

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace huge {
namespace {

/// Replaces arbitrary orderable keys by dense ranks (0 = smallest key).
/// Equal keys get equal ranks, and the ranks only depend on the multiset
/// of keys — the property that keeps colours isomorphism-invariant.
template <typename Key>
std::vector<int> RankColors(const std::vector<Key>& keys) {
  std::vector<Key> sorted(keys);
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  std::vector<int> ranks(keys.size());
  for (size_t v = 0; v < keys.size(); ++v) {
    ranks[v] = static_cast<int>(
        std::lower_bound(sorted.begin(), sorted.end(), keys[v]) -
        sorted.begin());
  }
  return ranks;
}

/// 1-WL colour refinement: start from (degree, label), refine each vertex
/// by the sorted multiset of its neighbours' colours until stable.
std::vector<int> RefineColors(const QueryGraph& q) {
  const int n = q.NumVertices();
  std::vector<std::pair<int, int>> init(n);
  for (int v = 0; v < n; ++v) {
    init[v] = {q.Degree(v), q.Label(v)};
  }
  std::vector<int> color = RankColors(init);
  for (int round = 0; round < n; ++round) {
    std::vector<std::pair<int, std::vector<int>>> keys(n);
    for (int v = 0; v < n; ++v) {
      std::vector<int> nbr;
      const uint32_t mask = q.NeighborMask(static_cast<QueryVertexId>(v));
      for (int u = 0; u < n; ++u) {
        if ((mask >> u) & 1u) nbr.push_back(color[u]);
      }
      std::sort(nbr.begin(), nbr.end());
      keys[v] = {color[v], std::move(nbr)};
    }
    std::vector<int> next = RankColors(keys);
    if (next == color) break;
    color = std::move(next);
  }
  return color;
}

/// Per-position code entry: the adjacency bitmask to earlier positions in
/// the high bits, the vertex label in the low byte. Lexicographic order of
/// the entry vector defines the canonical form.
uint32_t CodeEntry(const QueryGraph& q, const std::vector<int>& order, int pos,
                   int v) {
  uint32_t mask = 0;
  for (int p = 0; p < pos; ++p) {
    if (q.HasEdge(static_cast<QueryVertexId>(order[p]),
                  static_cast<QueryVertexId>(v))) {
      mask |= 1u << p;
    }
  }
  return (mask << 8) | q.Label(static_cast<QueryVertexId>(v));
}

/// Backtracking search for the lexicographically smallest code among all
/// colour-respecting vertex orders (position i must take a vertex of the
/// minimal colour among the still-unused ones — an isomorphism-invariant
/// restriction that prunes the n! orders down to the colour classes'
/// automorphism slack).
struct CanonSearch {
  const QueryGraph& q;
  const std::vector<int>& color;
  int n;
  std::vector<int> order;
  std::vector<bool> used;
  std::vector<uint32_t> cur;
  std::vector<uint32_t> best;
  bool have_best = false;
  uint64_t nodes = 0;
  bool aborted = false;

  /// Search-node budget: far above what any refined <= 16-vertex pattern
  /// needs (a fully symmetric clique explores O(n^2) nodes thanks to the
  /// prefix prune), present so an adversarial regular pattern degrades to
  /// the exact fallback instead of stalling a Submit call.
  static constexpr uint64_t kNodeBudget = 1u << 20;

  /// True iff cur[0..pos) equals best[0..pos). Only then can a larger
  /// entry be pruned (a smaller prefix makes every completion a new
  /// best). Recomputed per candidate rather than threaded down the
  /// recursion: best only ever moves to a descendant of the current path,
  /// so a node can *become* tight mid-loop — a cached flag would go stale
  /// and silently disable the prune.
  bool PrefixTight(int pos) const {
    for (int p = 0; p < pos; ++p) {
      if (cur[p] != best[p]) return false;
    }
    return true;
  }

  void Dfs(int pos) {
    if (aborted) return;
    if (++nodes > kNodeBudget) {
      aborted = true;
      return;
    }
    if (pos == n) {
      if (!have_best || cur < best) {
        best = cur;
        have_best = true;
      }
      return;
    }
    int min_color = n + 1;
    for (int v = 0; v < n; ++v) {
      if (!used[v]) min_color = std::min(min_color, color[v]);
    }
    for (int v = 0; v < n; ++v) {
      if (used[v] || color[v] != min_color) continue;
      const uint32_t entry = CodeEntry(q, order, pos, v);
      if (have_best && PrefixTight(pos) && entry > best[pos]) {
        continue;  // every completion would exceed best lexicographically
      }
      order[pos] = v;
      used[v] = true;
      cur[pos] = entry;
      Dfs(pos + 1);
      used[v] = false;
      if (aborted) return;
    }
  }
};

void AppendHex(std::string* out, uint64_t value) {
  static const char kDigits[] = "0123456789abcdef";
  char buf[16];
  int i = 0;
  do {
    buf[i++] = kDigits[value & 0xf];
    value >>= 4;
  } while (value != 0);
  while (i > 0) out->push_back(buf[--i]);
}

}  // namespace

std::string CanonicalSignature(const QueryGraph& q) {
  const int n = q.NumVertices();
  if (n == 0) return std::string("c0:");
  const std::vector<int> color = RefineColors(q);

  CanonSearch search{q, color, n};
  search.order.assign(n, -1);
  search.used.assign(n, false);
  search.cur.assign(n, 0);
  search.Dfs(0);

  if (!search.aborted && search.have_best) {
    std::string sig("c");
    AppendHex(&sig, static_cast<uint64_t>(n));
    sig.push_back(':');
    for (uint32_t entry : search.best) {
      AppendHex(&sig, entry);
      sig.push_back('.');
    }
    return sig;
  }

  // Exact fallback (search budget exceeded): encode the graph as numbered.
  // Not canonical — an isomorphic renumbering may produce a different
  // signature and miss the cache — but equal signatures still imply equal
  // (hence isomorphic) graphs, so a cache hit is always safe.
  std::string sig("x");
  AppendHex(&sig, static_cast<uint64_t>(n));
  sig.push_back(':');
  for (int v = 0; v < n; ++v) {
    AppendHex(&sig, q.Label(static_cast<QueryVertexId>(v)));
    sig.push_back('.');
  }
  sig.push_back('/');
  for (const auto& [u, v] : q.Edges()) {
    AppendHex(&sig, u);
    sig.push_back('-');
    AppendHex(&sig, v);
    sig.push_back('.');
  }
  return sig;
}

}  // namespace huge
