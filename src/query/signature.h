#ifndef HUGE_QUERY_SIGNATURE_H_
#define HUGE_QUERY_SIGNATURE_H_

#include <string>

#include "query/query_graph.h"

namespace huge {

/// Canonical signature of a query graph, used as the plan-cache key: two
/// queries receive the *same* signature iff they are isomorphic (same
/// pattern up to renumbering the query vertices, labels respected), so
/// repeated submissions of the same pattern — however the client numbered
/// its vertices — hit one cached plan, while merely same-shaped patterns
/// (equal degree sequences, different structure or label arrangement) miss.
///
/// Algorithm: iterative colour refinement (1-WL: a vertex's colour is
/// refined by the multiset of its neighbours' colours until stable; the
/// initial colour is (degree, label)), then a backtracking search over
/// colour-respecting vertex orders for the lexicographically smallest
/// adjacency code (per position: the bitmask of edges to earlier positions,
/// plus the label). Colour classes are isomorphism-invariant, so the
/// minimal code is a canonical form. Query graphs have at most 16 vertices
/// and the refinement splits most classes, so the search is tiny for every
/// realistic pattern; a pathological instance that exceeds the internal
/// node budget falls back to an *exact* (non-canonical) encoding of the
/// graph as numbered — isomorphic copies may then miss the cache, but a
/// signature collision still implies isomorphism, which is the property
/// plan-cache correctness rests on.
std::string CanonicalSignature(const QueryGraph& q);

}  // namespace huge

#endif  // HUGE_QUERY_SIGNATURE_H_
