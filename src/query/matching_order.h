#ifndef HUGE_QUERY_MATCHING_ORDER_H_
#define HUGE_QUERY_MATCHING_ORDER_H_

#include <vector>

#include "query/query_graph.h"

namespace huge {

/// A connected matching order over the query vertices: starts at a
/// max-degree vertex and greedily appends the unmatched vertex with the
/// most back-edges to the prefix (ties by smaller id). Every vertex after
/// the first has at least one earlier neighbour, which worst-case-optimal
/// extension requires (Equation 2).
std::vector<QueryVertexId> ConnectedMatchingOrder(const QueryGraph& q);

}  // namespace huge

#endif  // HUGE_QUERY_MATCHING_ORDER_H_
