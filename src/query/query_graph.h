#ifndef HUGE_QUERY_QUERY_GRAPH_H_
#define HUGE_QUERY_QUERY_GRAPH_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace huge {

/// An order constraint `match[first] < match[second]` used for symmetry
/// breaking (Section 2, [28]): with these constraints each automorphism
/// class of embeddings is enumerated exactly once.
struct OrderConstraint {
  QueryVertexId first;
  QueryVertexId second;

  friend bool operator==(const OrderConstraint&,
                         const OrderConstraint&) = default;
};

/// A small, connected, undirected query graph (pattern). Query graphs have
/// at most 16 vertices; adjacency is stored as bitmasks for O(1) edge tests
/// during enumeration and plan search.
class QueryGraph {
 public:
  static constexpr int kMaxVertices = 16;

  /// Wildcard label: matches every data vertex.
  static constexpr uint8_t kAnyLabel = 255;

  /// Creates a query graph with `n` isolated vertices.
  explicit QueryGraph(int n, std::string name = "");

  /// Adds the undirected edge (u, v). Duplicate additions are idempotent.
  void AddEdge(QueryVertexId u, QueryVertexId v);

  int NumVertices() const { return num_vertices_; }
  int NumEdges() const { return static_cast<int>(edges_.size()); }
  const std::string& name() const { return name_; }

  bool HasEdge(QueryVertexId u, QueryVertexId v) const {
    return (adj_[u] >> v) & 1u;
  }

  /// Bitmask of neighbours of `v`.
  uint32_t NeighborMask(QueryVertexId v) const { return adj_[v]; }

  int Degree(QueryVertexId v) const { return __builtin_popcount(adj_[v]); }

  /// Constrains query vertex `v` to match only data vertices with `label`.
  void SetLabel(QueryVertexId v, uint8_t label) { labels_[v] = label; }

  /// The label constraint of `v` (kAnyLabel when unconstrained).
  uint8_t Label(QueryVertexId v) const { return labels_[v]; }

  /// True iff any vertex carries a label constraint.
  bool HasLabels() const {
    for (uint8_t l : labels_) {
      if (l != kAnyLabel) return true;
    }
    return false;
  }

  /// Edges in canonical order (u < v, lexicographically sorted). The edge
  /// index in this vector is the edge id used by the plan optimiser's
  /// edge-subset DP.
  const std::vector<std::pair<QueryVertexId, QueryVertexId>>& Edges() const {
    return edges_;
  }

  /// True iff the graph (restricted to vertices incident to at least one
  /// edge) is connected and has no isolated vertices.
  bool IsConnected() const;

  /// All automorphisms as permutations p with p[v] = image of v.
  std::vector<std::vector<QueryVertexId>> Automorphisms() const;

  /// A minimal set of order constraints that breaks all automorphisms
  /// (Grochow–Kellis style: repeatedly fix the vertex with the largest
  /// orbit). The result, applied as filters during enumeration, yields each
  /// subgraph instance exactly once.
  std::vector<OrderConstraint> SymmetryBreakingOrders() const;

  /// Human-readable description, e.g. "square{0-1,1-2,2-3,0-3}".
  std::string ToString() const;

 private:
  int num_vertices_;
  std::string name_;
  std::vector<uint32_t> adj_;
  std::vector<uint8_t> labels_;
  std::vector<std::pair<QueryVertexId, QueryVertexId>> edges_;
};

/// Library of the paper's benchmark queries (Figure 4; shapes documented in
/// DESIGN.md §4) plus a few extras used by tests and examples.
namespace queries {

QueryGraph Triangle();
QueryGraph Square();         ///< q1: 4-cycle, the Table-1 query.
QueryGraph Diamond();        ///< q2: 4-cycle plus one chord.
QueryGraph Clique(int k);    ///< q3 = Clique(4).
QueryGraph House();          ///< q4: square + roof apex.
QueryGraph TailedClique();   ///< q5: 4-clique with a pendant vertex.
QueryGraph DoubleSquare();   ///< q6: two squares sharing an edge.
QueryGraph Path(int n);      ///< q7 = Path(6), the "5-path".
QueryGraph ChainedTriangles();  ///< q8: two triangles + bridge edge.
QueryGraph FiveCycle();

/// Returns the paper's query q_i for i in [1, 8].
QueryGraph Q(int i);

}  // namespace queries

}  // namespace huge

#endif  // HUGE_QUERY_QUERY_GRAPH_H_
