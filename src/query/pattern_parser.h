#ifndef HUGE_QUERY_PATTERN_PARSER_H_
#define HUGE_QUERY_PATTERN_PARSER_H_

#include <map>
#include <string>

#include "query/query_graph.h"

namespace huge {

/// Result of parsing a pattern expression: the query graph plus the map
/// from user-facing variable names to query vertex ids.
struct ParsedPattern {
  QueryGraph query{1};
  std::map<std::string, QueryVertexId> bindings;
  std::string error;  ///< empty on success

  bool ok() const { return error.empty(); }
};

/// Parses a Cypher-flavoured undirected pattern expression (Section 6:
/// HUGE as the enumeration core of a Cypher-based graph database):
///
///   (a)-(b), (b)-(c), (a:2)-(c)
///
/// Grammar:
///   pattern  := chain (',' chain)*
///   chain    := vertex ('-' vertex)+
///   vertex   := '(' name (':' label)? ')'
///   name     := [A-Za-z_][A-Za-z0-9_]*
///   label    := integer in [0, 254]
///
/// Each '-' adds an undirected edge; a variable may appear many times and
/// may state its label at any occurrence (conflicting labels are an
/// error). Whitespace is ignored.
ParsedPattern ParsePattern(const std::string& text);

}  // namespace huge

#endif  // HUGE_QUERY_PATTERN_PARSER_H_
