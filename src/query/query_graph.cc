#include "query/query_graph.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace huge {

QueryGraph::QueryGraph(int n, std::string name)
    : num_vertices_(n),
      name_(std::move(name)),
      adj_(n, 0),
      labels_(n, kAnyLabel) {
  HUGE_CHECK(n >= 1 && n <= kMaxVertices);
}

void QueryGraph::AddEdge(QueryVertexId u, QueryVertexId v) {
  HUGE_CHECK(u < num_vertices_ && v < num_vertices_ && u != v);
  if (HasEdge(u, v)) return;
  adj_[u] |= 1u << v;
  adj_[v] |= 1u << u;
  auto e = std::minmax(u, v);
  edges_.emplace_back(e.first, e.second);
  std::sort(edges_.begin(), edges_.end());
}

bool QueryGraph::IsConnected() const {
  if (num_vertices_ == 0) return false;
  for (int v = 0; v < num_vertices_; ++v) {
    if (adj_[v] == 0) return false;  // isolated vertex
  }
  uint32_t visited = 1u;  // start BFS at vertex 0
  uint32_t frontier = 1u;
  while (frontier != 0) {
    uint32_t next = 0;
    for (int v = 0; v < num_vertices_; ++v) {
      if ((frontier >> v) & 1u) next |= adj_[v];
    }
    frontier = next & ~visited;
    visited |= next;
  }
  return visited == (1u << num_vertices_) - 1u;
}

std::vector<std::vector<QueryVertexId>> QueryGraph::Automorphisms() const {
  std::vector<std::vector<QueryVertexId>> autos;
  std::vector<QueryVertexId> perm(num_vertices_);
  std::iota(perm.begin(), perm.end(), 0);
  do {
    bool ok = true;
    for (int v = 0; v < num_vertices_; ++v) {
      if (labels_[v] != labels_[perm[v]]) {
        ok = false;
        break;
      }
    }
    for (const auto& [u, v] : edges_) {
      if (!ok) break;
      if (!HasEdge(perm[u], perm[v])) {
        ok = false;
        break;
      }
    }
    // Degree-preserving permutations of an equal-size edge set: checking
    // edges map to edges suffices (|E| is preserved by a bijection).
    if (ok) autos.emplace_back(perm.begin(), perm.end());
  } while (std::next_permutation(perm.begin(), perm.end()));
  return autos;
}

std::vector<OrderConstraint> QueryGraph::SymmetryBreakingOrders() const {
  std::vector<OrderConstraint> orders;
  auto group = Automorphisms();
  // Grochow-Kellis: while the group is non-trivial, pick the vertex with the
  // largest orbit, emit v < u for every other u in its orbit, and restrict
  // the group to the stabiliser of v.
  while (group.size() > 1) {
    int best_v = -1;
    uint32_t best_orbit = 0;
    for (int v = 0; v < num_vertices_; ++v) {
      uint32_t orbit = 0;
      for (const auto& p : group) orbit |= 1u << p[v];
      if (__builtin_popcount(orbit) > __builtin_popcount(best_orbit)) {
        best_orbit = orbit;
        best_v = v;
      }
    }
    HUGE_CHECK(best_v >= 0);
    for (int u = 0; u < num_vertices_; ++u) {
      if (u != best_v && ((best_orbit >> u) & 1u)) {
        orders.push_back({static_cast<QueryVertexId>(best_v),
                          static_cast<QueryVertexId>(u)});
      }
    }
    std::vector<std::vector<QueryVertexId>> stabiliser;
    for (auto& p : group) {
      if (p[best_v] == best_v) stabiliser.push_back(std::move(p));
    }
    group = std::move(stabiliser);
  }
  return orders;
}

std::string QueryGraph::ToString() const {
  std::string s = name_.empty() ? "query" : name_;
  s += "{";
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(edges_[i].first) + "-" +
         std::to_string(edges_[i].second);
  }
  s += "}";
  return s;
}

namespace queries {

QueryGraph Triangle() {
  QueryGraph q(3, "triangle");
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  q.AddEdge(0, 2);
  return q;
}

QueryGraph Square() {
  QueryGraph q(4, "square");
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  q.AddEdge(2, 3);
  q.AddEdge(0, 3);
  return q;
}

QueryGraph Diamond() {
  QueryGraph q(4, "diamond");
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  q.AddEdge(2, 3);
  q.AddEdge(0, 3);
  q.AddEdge(1, 3);
  return q;
}

QueryGraph Clique(int k) {
  QueryGraph q(k, std::to_string(k) + "-clique");
  for (int u = 0; u < k; ++u) {
    for (int v = u + 1; v < k; ++v) {
      q.AddEdge(static_cast<QueryVertexId>(u), static_cast<QueryVertexId>(v));
    }
  }
  return q;
}

QueryGraph House() {
  QueryGraph q(5, "house");
  // Square 1-2-3-4 plus roof apex 0 adjacent to 1 and 4.
  q.AddEdge(1, 2);
  q.AddEdge(2, 3);
  q.AddEdge(3, 4);
  q.AddEdge(1, 4);
  q.AddEdge(0, 1);
  q.AddEdge(0, 4);
  return q;
}

QueryGraph TailedClique() {
  QueryGraph q(5, "tailed-4-clique");
  for (int u = 0; u < 4; ++u) {
    for (int v = u + 1; v < 4; ++v) {
      q.AddEdge(static_cast<QueryVertexId>(u), static_cast<QueryVertexId>(v));
    }
  }
  q.AddEdge(3, 4);
  return q;
}

QueryGraph DoubleSquare() {
  QueryGraph q(6, "double-square");
  // Squares 0-1-2-3 and 2-3-4-5 sharing edge (2,3).
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  q.AddEdge(2, 3);
  q.AddEdge(0, 3);
  q.AddEdge(2, 4);
  q.AddEdge(4, 5);
  q.AddEdge(3, 5);
  return q;
}

QueryGraph Path(int n) {
  QueryGraph q(n, std::to_string(n - 1) + "-path");
  for (int v = 0; v + 1 < n; ++v) {
    q.AddEdge(static_cast<QueryVertexId>(v), static_cast<QueryVertexId>(v + 1));
  }
  return q;
}

QueryGraph ChainedTriangles() {
  QueryGraph q(6, "chained-triangles");
  // Triangles 0-1-2 and 3-4-5 bridged by edge (2,3).
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  q.AddEdge(0, 2);
  q.AddEdge(3, 4);
  q.AddEdge(4, 5);
  q.AddEdge(3, 5);
  q.AddEdge(2, 3);
  return q;
}

QueryGraph FiveCycle() {
  QueryGraph q(5, "5-cycle");
  for (int v = 0; v < 5; ++v) {
    q.AddEdge(static_cast<QueryVertexId>(v), static_cast<QueryVertexId>((v + 1) % 5));
  }
  return q;
}

QueryGraph Q(int i) {
  switch (i) {
    case 1:
      return Square();
    case 2:
      return Diamond();
    case 3:
      return Clique(4);
    case 4:
      return House();
    case 5:
      return TailedClique();
    case 6:
      return DoubleSquare();
    case 7:
      return Path(6);
    case 8:
      return ChainedTriangles();
    default:
      HUGE_CHECK(false && "query index must be in [1, 8]");
  }
}

}  // namespace queries
}  // namespace huge
