#include "query/matching_order.h"

#include "common/check.h"

namespace huge {

std::vector<QueryVertexId> ConnectedMatchingOrder(const QueryGraph& q) {
  const int n = q.NumVertices();
  std::vector<QueryVertexId> order;
  std::vector<bool> used(n, false);
  int start = 0;
  for (int v = 1; v < n; ++v) {
    if (q.Degree(static_cast<QueryVertexId>(v)) >
        q.Degree(static_cast<QueryVertexId>(start))) {
      start = v;
    }
  }
  order.push_back(static_cast<QueryVertexId>(start));
  used[start] = true;
  while (static_cast<int>(order.size()) < n) {
    int best = -1;
    int best_back = -1;
    for (int v = 0; v < n; ++v) {
      if (used[v]) continue;
      int back = 0;
      for (QueryVertexId u : order) {
        if (q.HasEdge(static_cast<QueryVertexId>(v), u)) ++back;
      }
      if (back > best_back) {
        best_back = back;
        best = v;
      }
    }
    HUGE_CHECK(best >= 0 && best_back >= 1 && "query must be connected");
    order.push_back(static_cast<QueryVertexId>(best));
    used[best] = true;
  }
  return order;
}

}  // namespace huge
