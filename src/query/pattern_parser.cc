#include "query/pattern_parser.h"

#include <cctype>
#include <utility>
#include <vector>

namespace huge {
namespace {

/// Minimal recursive-descent scanner over the pattern text.
class Scanner {
 public:
  explicit Scanner(const std::string& text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Name(std::string* out) {
    SkipSpace();
    const size_t start = pos_;
    if (pos_ < text_.size() &&
        (std::isalpha(static_cast<unsigned char>(text_[pos_])) ||
         text_[pos_] == '_')) {
      ++pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
    }
    if (pos_ == start) return false;
    *out = text_.substr(start, pos_ - start);
    return true;
  }

  bool Integer(int* out) {
    SkipSpace();
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) return false;
    *out = std::stoi(text_.substr(start, pos_ - start));
    return true;
  }

  size_t position() const { return pos_; }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

struct VertexSpec {
  std::string name;
  int label = -1;  // -1 = unspecified
};

}  // namespace

ParsedPattern ParsePattern(const std::string& text) {
  ParsedPattern result;
  Scanner scan(text);

  // First pass: collect the edge list as (name, name) pairs and per-name
  // labels, validating syntax.
  std::vector<std::pair<VertexSpec, VertexSpec>> edges;
  std::map<std::string, int> labels;

  auto fail = [&](const std::string& message) {
    result.error = message + " (at offset " +
                   std::to_string(scan.position()) + ")";
    return result;
  };

  auto parse_vertex = [&](VertexSpec* v) -> bool {
    if (!scan.Consume('(')) return false;
    if (!scan.Name(&v->name)) return false;
    if (scan.Consume(':')) {
      if (!scan.Integer(&v->label) || v->label < 0 || v->label > 254) {
        return false;
      }
    }
    return scan.Consume(')');
  };

  auto note_label = [&](const VertexSpec& v) -> bool {
    if (v.label < 0) return true;
    auto [it, inserted] = labels.emplace(v.name, v.label);
    return inserted || it->second == v.label;
  };

  do {
    VertexSpec prev;
    if (!parse_vertex(&prev)) return fail("expected (name[:label])");
    if (!note_label(prev)) return fail("conflicting label for " + prev.name);
    bool any_edge = false;
    while (scan.Consume('-')) {
      VertexSpec next;
      if (!parse_vertex(&next)) return fail("expected (name[:label])");
      if (!note_label(next)) {
        return fail("conflicting label for " + next.name);
      }
      if (next.name == prev.name) return fail("self loop on " + next.name);
      edges.emplace_back(prev, next);
      prev = std::move(next);
      any_edge = true;
    }
    if (!any_edge) return fail("vertex without an edge");
  } while (scan.Consume(','));

  if (!scan.AtEnd()) return fail("trailing input");

  // Second pass: assign dense vertex ids in order of first appearance.
  std::map<std::string, QueryVertexId> ids;
  for (const auto& [a, b] : edges) {
    for (const auto* v : {&a, &b}) {
      if (ids.find(v->name) == ids.end()) {
        ids.emplace(v->name, static_cast<QueryVertexId>(ids.size()));
      }
    }
  }
  if (ids.size() > QueryGraph::kMaxVertices) {
    result.error = "too many pattern variables";
    return result;
  }

  QueryGraph q(static_cast<int>(ids.size()), "pattern");
  for (const auto& [a, b] : edges) q.AddEdge(ids.at(a.name), ids.at(b.name));
  for (const auto& [name, label] : labels) {
    q.SetLabel(ids.at(name), static_cast<uint8_t>(label));
  }
  if (!q.IsConnected()) {
    result.error = "pattern must be connected";
    return result;
  }
  result.query = std::move(q);
  result.bindings = std::move(ids);
  return result;
}

}  // namespace huge
