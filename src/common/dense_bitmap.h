#ifndef HUGE_COMMON_DENSE_BITMAP_H_
#define HUGE_COMMON_DENSE_BITMAP_H_

#include <algorithm>
#include <span>
#include <vector>

#include "common/types.h"

namespace huge {

/// A range-clamped, uncompressed bitset over a contiguous vertex-id window.
/// The window starts at a 64-aligned `base` and spans `words.size() * 64`
/// ids; ids outside the window are implicitly absent. This is the physical
/// representation behind the engine's dense-neighbourhood intersection
/// kernels (word-wise AND + popcount) and the graph's cached hub bitmaps:
/// a neighbourhood whose density within its id range is at least 1/64
/// costs no more memory as a bitmap than as a sorted list.
///
/// Because every bitmap's base is 64-aligned, two bitmaps always agree on
/// word boundaries and the AND kernels never need cross-word shifts.
class DenseBitmap {
 public:
  DenseBitmap() = default;

  /// Rebuilds this bitmap from `list` (sorted, duplicate-free) restricted
  /// to the id window [lo, hi), reusing the word storage — the form the
  /// intersection kernels call per-intersection on scratch bitmaps.
  void AssignClamped(std::span<const VertexId> list, VertexId lo,
                     VertexId hi) {
    words_.clear();
    base_ = 0;
    if (list.empty() || lo >= hi) return;
    const auto first = std::lower_bound(list.begin(), list.end(), lo);
    const auto last = std::lower_bound(first, list.end(), hi);
    if (first == last) return;
    base_ = *first & ~static_cast<VertexId>(63);
    words_.assign((*(last - 1) - base_) / 64 + 1, 0);
    for (auto it = first; it != last; ++it) {
      const VertexId off = *it - base_;
      words_[off >> 6] |= 1ull << (off & 63);
    }
  }

  /// Builds the bitmap of `list` restricted to the id window [lo, hi).
  static DenseBitmap BuildClamped(std::span<const VertexId> list, VertexId lo,
                                  VertexId hi) {
    DenseBitmap bm;
    bm.AssignClamped(list, lo, hi);
    return bm;
  }

  /// Builds the bitmap of the full list.
  static DenseBitmap Build(std::span<const VertexId> list) {
    return list.empty() ? DenseBitmap()
                        : BuildClamped(list, list.front(), list.back() + 1);
  }

  bool empty() const { return words_.empty(); }
  VertexId base() const { return base_; }
  /// One past the last id the window can represent.
  VertexId RangeEnd() const {
    return base_ + static_cast<VertexId>(words_.size() * 64);
  }
  std::span<const uint64_t> words() const { return words_; }

  /// O(1) membership test; ids outside the window return false.
  bool Contains(VertexId x) const {
    if (x < base_) return false;
    const VertexId off = x - base_;
    const size_t w = off >> 6;
    if (w >= words_.size()) return false;
    return (words_[w] >> (off & 63)) & 1u;
  }

  /// Bytes of the bitmap storage (hub-cache accounting).
  size_t SizeBytes() const { return words_.size() * sizeof(uint64_t); }

 private:
  VertexId base_ = 0;  ///< 64-aligned start of the window
  std::vector<uint64_t> words_;
};

// The word-wise AND + popcount / materialize / probe kernels over
// DenseBitmaps live in engine/intersect.h — they dispatch to the best
// available ISA (AVX2 nibble-LUT popcount, scalar POPCNT) like the other
// intersection kernels.

}  // namespace huge

#endif  // HUGE_COMMON_DENSE_BITMAP_H_
