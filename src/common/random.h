#ifndef HUGE_COMMON_RANDOM_H_
#define HUGE_COMMON_RANDOM_H_

#include <cstdint>

namespace huge {

/// Deterministic, fast 64-bit PRNG (splitmix64). All synthetic data in the
/// repository is generated through this class so that every test and bench
/// is reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in `[0, bound)`. `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound) { return Next() % bound; }

  /// Uniform double in `[0, 1)`.
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  uint64_t state_;
};

}  // namespace huge

#endif  // HUGE_COMMON_RANDOM_H_
