#ifndef HUGE_COMMON_MEMORY_TRACKER_H_
#define HUGE_COMMON_MEMORY_TRACKER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace huge {

/// Tracks the bytes held by the engine's dynamic state (operator output
/// queues, join buffers, caches) and records the peak, which is the paper's
/// metric `M` (Table 1). Thread-safe; updated by all workers.
class MemoryTracker {
 public:
  MemoryTracker() = default;
  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  /// Registers `bytes` of newly held memory and updates the peak.
  void Allocate(size_t bytes) {
    size_t now = current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    size_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now,
                                        std::memory_order_relaxed)) {
    }
  }

  /// Releases previously registered memory.
  void Release(size_t bytes) {
    current_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  /// Bytes currently held.
  size_t current() const { return current_.load(std::memory_order_relaxed); }

  /// Highest value `current()` has reached.
  size_t peak() const { return peak_.load(std::memory_order_relaxed); }

  /// Clears both counters (between runs).
  void Reset() {
    current_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<size_t> current_{0};
  std::atomic<size_t> peak_{0};
};

}  // namespace huge

#endif  // HUGE_COMMON_MEMORY_TRACKER_H_
