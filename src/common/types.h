#ifndef HUGE_COMMON_TYPES_H_
#define HUGE_COMMON_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <limits>

namespace huge {

/// Identifier of a data-graph vertex. Vertices are densely numbered
/// `0 .. |V|-1` (Section 2 of the paper).
using VertexId = uint32_t;

/// Identifier of a query-graph vertex (query graphs are tiny).
using QueryVertexId = uint8_t;

/// Index of a machine in the simulated cluster.
using MachineId = uint32_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kNullVertex = std::numeric_limits<VertexId>::max();

/// Number of bytes used to ship one vertex id over the simulated network.
inline constexpr size_t kVertexBytes = sizeof(VertexId);

}  // namespace huge

#endif  // HUGE_COMMON_TYPES_H_
