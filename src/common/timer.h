#ifndef HUGE_COMMON_TIMER_H_
#define HUGE_COMMON_TIMER_H_

#include <chrono>

namespace huge {

/// Simple monotonic wall-clock timer.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Microseconds elapsed.
  double Micros() const { return Seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace huge

#endif  // HUGE_COMMON_TIMER_H_
