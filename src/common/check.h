#ifndef HUGE_COMMON_CHECK_H_
#define HUGE_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace huge::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "HUGE_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace huge::internal

/// Always-on invariant check. The engine is a research system reproducing a
/// paper: violated invariants are programming errors, so we abort loudly
/// rather than attempting recovery (no exceptions, per style guide).
#define HUGE_CHECK(expr)                                         \
  do {                                                           \
    if (!(expr)) {                                               \
      ::huge::internal::CheckFailed(__FILE__, __LINE__, #expr);  \
    }                                                            \
  } while (0)

/// Debug-only check for hot paths.
#ifdef NDEBUG
#define HUGE_DCHECK(expr) \
  do {                    \
  } while (0)
#else
#define HUGE_DCHECK(expr) HUGE_CHECK(expr)
#endif

#endif  // HUGE_COMMON_CHECK_H_
